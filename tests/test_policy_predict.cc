// Contract tests for the predictive-admission layer: the
// progress-credited remaining-work estimate, the pmm-predict and select
// policies' lifecycle rules (tick requirements, degenerate identities),
// and the stable-tail hint edf-shed now forwards when nothing is shed.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/memory_manager.h"
#include "core/memory_policy.h"
#include "core/policy_registry.h"
#include "core/strategy.h"
#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::core {
namespace {

// ---------------------------------------------------------------------------
// RemainingEstimate: the progress credit behind edf-shed and oracle-ed.
// ---------------------------------------------------------------------------

MemRequest Est(SimTime estimate, PageCount operand_pages,
               const PageCount* pages_read) {
  MemRequest r;
  r.standalone_estimate = estimate;
  r.operand_pages = operand_pages;
  r.pages_read = pages_read;
  return r;
}

TEST(RemainingEstimate, NoProgressSignalFallsBackToFullEstimate) {
  EXPECT_DOUBLE_EQ(RemainingEstimate(Est(40.0, 100, nullptr)), 40.0);
  PageCount read = 50;
  EXPECT_DOUBLE_EQ(RemainingEstimate(Est(40.0, 0, &read)), 40.0);
}

TEST(RemainingEstimate, ScalesByFractionOfPagesNotYetRead) {
  PageCount read = 0;
  MemRequest q = Est(40.0, 100, &read);
  EXPECT_DOUBLE_EQ(RemainingEstimate(q), 40.0);
  read = 25;
  EXPECT_DOUBLE_EQ(RemainingEstimate(q), 30.0);
  read = 90;
  EXPECT_DOUBLE_EQ(RemainingEstimate(q), 4.0);
}

TEST(RemainingEstimate, CompletedOrOvershotProgressCostsNothing) {
  PageCount read = 100;
  EXPECT_DOUBLE_EQ(RemainingEstimate(Est(40.0, 100, &read)), 0.0);
  read = 140;  // prefetch overshoot must not go negative
  EXPECT_DOUBLE_EQ(RemainingEstimate(Est(40.0, 100, &read)), 0.0);
}

// ---------------------------------------------------------------------------
// Tick requirements: time-driven policies must reject hosts that never
// tick instead of silently degenerating.
// ---------------------------------------------------------------------------

TEST(PredictivePolicies, PmmPredictRejectsHostsThatNeverTick) {
  engine::SystemConfig config =
      harness::BaselineConfig(0.06, {"pmm-predict"}, 42);
  config.mpl_sample_interval = 0.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PredictivePolicies, SelectNeedsTicksOnlyWithMultipleCandidates) {
  // The bandit advances on ticks; with one candidate there is nothing to
  // select and a tickless host is fine.
  engine::SystemConfig config = harness::BaselineConfig(
      0.06, {"select:candidates=pmm+pmm-predict"}, 42);
  config.mpl_sample_interval = 0.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kFailedPrecondition);

  config.policy = {"select:candidates=pmm"};
  EXPECT_TRUE(engine::Rtdbs::Create(config).ok());
}

// ---------------------------------------------------------------------------
// Degenerate identities: select with a single candidate is the candidate.
// ---------------------------------------------------------------------------

/// Fingerprint of a short run, for trajectory-identity checks.
std::tuple<uint64_t, int64_t, int64_t, double> Fingerprint(
    const engine::SystemConfig& config, SimTime horizon) {
  auto sys = engine::Rtdbs::Create(config);
  RTQ_CHECK(sys.ok());
  sys.value()->RunUntil(horizon);
  engine::SystemSummary s = sys.value()->Summarize();
  return {s.events_dispatched, s.overall.completions, s.overall.misses,
          s.overall.avg_exec};
}

TEST(PredictivePolicies, SingleCandidateSelectIsTheCandidateBare) {
  // With one arm the bandit never runs: same events, same completions,
  // same misses, same timings as the candidate on its own. One
  // controller-driven candidate, one strategy-only candidate, and one
  // non-stationary scenario so the tick path is exercised too.
  EXPECT_EQ(
      Fingerprint(harness::BaselineConfig(0.06, {"pmm"}, 42), 1800.0),
      Fingerprint(
          harness::BaselineConfig(0.06, {"select:candidates=pmm"}, 42),
          1800.0));
  EXPECT_EQ(
      Fingerprint(harness::MulticlassConfig(0.8, {"edf-shed"}, 42), 1800.0),
      Fingerprint(harness::MulticlassConfig(
                      0.8, {"select:candidates=edf-shed"}, 42),
                  1800.0));
  const char* flash = "flash:at=600,dur=300,decay=150";
  EXPECT_EQ(
      Fingerprint(harness::ScenarioConfig(flash, {"pmm"}, 42), 1800.0),
      Fingerprint(
          harness::ScenarioConfig(flash, {"select:candidates=pmm"}, 42),
          1800.0));
}

TEST(PredictivePolicies, SelectCommaAndPlusFormsAreTheSamePolicy) {
  auto plus =
      PolicyRegistry::Global().Create("select:candidates=pmm+pmm-predict");
  auto comma =
      PolicyRegistry::Global().Create("select:candidates=pmm,pmm-predict");
  ASSERT_TRUE(plus.ok());
  ASSERT_TRUE(comma.ok());
  EXPECT_EQ(plus.value()->Describe(), comma.value()->Describe());
  EXPECT_EQ(plus.value()->Describe(),
            "select:candidates=pmm+pmm-predict,window=5");
  EXPECT_EQ(plus.value()->DisplayName(), "Select(PMM+PMM-Predict)");
}

TEST(PredictivePolicies, SelectCandidatesKeepInternalCommas) {
  // A candidate whose own spec contains commas survives both the select
  // arg grammar and the canonical round trip.
  auto policy = PolicyRegistry::Global().Create(
      "select:candidates=pmm-class:targets=6,10+pmm,window=3");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value()->Describe(),
            "select:candidates=pmm-class:targets=6,10+pmm,window=3");
}

TEST(PredictivePolicies, SelectRejectsNestedSelect) {
  auto policy =
      PolicyRegistry::Global().Create("select:candidates=pmm+select");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(PredictivePolicies, SelectPropagatesUnknownCandidateErrors) {
  auto policy =
      PolicyRegistry::Global().Create("select:candidates=no-such-policy");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kNotFound);
}

TEST(PredictivePolicies, PmmPredictDefaultsCollapseInDescribe) {
  // Explicitly spelling a default produces the bare canonical spec.
  auto policy =
      PolicyRegistry::Global().Create("pmm-predict:window=12,lead=2");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value()->Describe(), "pmm-predict");
  EXPECT_EQ(policy.value()->DisplayName(), "PMM-Predict");

  auto tuned = PolicyRegistry::Global().Create(
      "pmm-predict:window=8,lead=3,band=0.2,conf=0.6");
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned.value()->Describe(),
            "pmm-predict:window=8,lead=3,band=0.2,conf=0.6");
  EXPECT_EQ(tuned.value()->DisplayName(),
            "PMM-Predict(window=8,lead=3,band=0.2,conf=0.6)");
}

// ---------------------------------------------------------------------------
// edf-shed stable-tail hint: when nothing is shed the inner MinMax proof
// must reach the MemoryManager, so denied-tail churn skips recomputes.
// ---------------------------------------------------------------------------

MemRequest Q(QueryId id, SimTime deadline, PageCount min, PageCount max,
             SimTime estimate) {
  MemRequest r;
  r.id = id;
  r.deadline = deadline;
  r.min_memory = min;
  r.max_memory = max;
  r.standalone_estimate = estimate;
  return r;
}

/// Builds a manager driven by the given edf-shed spec and loads it so the
/// admission frontier sits strictly inside the list: two admitted heads,
/// one denied blocker (its minimum exceeds the 200-page pass-1 leftover).
/// Returns the attached policy to keep the strategy alive.
std::unique_ptr<MemoryPolicy> AttachEdfShed(const std::string& spec,
                                            MemoryManager& mm) {
  auto policy = PolicyRegistry::Global().Create(spec);
  RTQ_CHECK(policy.ok());
  PolicyHost host;
  host.mm = &mm;
  host.now = [] { return 0.0; };
  Status st = policy.value()->Attach(host);
  RTQ_CHECK(st.ok());
  mm.AddQuery(Q(1, 100000.0, 400, 900, 1000.0));
  mm.AddQuery(Q(2, 200000.0, 400, 900, 1000.0));
  mm.AddQuery(Q(3, 300000.0, 300, 900, 1000.0));  // denied: min > spare
  // Q3's own insert can be absorbed by the two-query hint, which would
  // leave a stale frontier-at-end cache; one explicit recompute caches
  // the three-query proof the churn below is meant to exercise.
  mm.Reallocate();
  return std::move(policy).value();
}

TEST(PredictivePolicies, EdfShedForwardsHintWhenNothingIsShed) {
  // Default margin: every query is feasible (deadlines dwarf the 1000 s
  // estimates), the shed filter passes everyone through, and the inner
  // MinMax stable-tail proof absorbs the whole churn burst — zero
  // recomputes for ten add/remove pairs in the dead zone.
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(),
                   [](QueryId, PageCount) {});
  auto policy = AttachEdfShed("edf-shed", mm);
  int64_t base = mm.recomputes();
  for (QueryId id = 100; id < 110; ++id) {
    mm.AddQuery(Q(id, 400000.0 + static_cast<double>(id), 500, 900, 1000.0));
    EXPECT_EQ(mm.allocation_of(id), 0);
    mm.RemoveQuery(id);
  }
  EXPECT_EQ(mm.recomputes(), base);
}

TEST(PredictivePolicies, EdfShedInvalidatesHintWhenShedding) {
  // A margin so large everything is shed: the filter rejects every
  // query, the wrapper withholds the inner proof, and the same churn
  // burst pays a full recompute per membership change.
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(),
                   [](QueryId, PageCount) {});
  auto policy = AttachEdfShed("edf-shed:m=1000", mm);
  int64_t base = mm.recomputes();
  for (QueryId id = 100; id < 110; ++id) {
    mm.AddQuery(Q(id, 400000.0 + static_cast<double>(id), 500, 900, 1000.0));
    mm.RemoveQuery(id);
  }
  EXPECT_EQ(mm.recomputes(), base + 20);
}

}  // namespace
}  // namespace rtq::core
