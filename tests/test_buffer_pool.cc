#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

namespace rtq::buffer {
namespace {

TEST(BufferPool, StartsFullyUnreserved) {
  BufferPool pool(2560);
  EXPECT_EQ(pool.total(), 2560);
  EXPECT_EQ(pool.reserved(), 0);
  EXPECT_EQ(pool.unreserved(), 2560);
  EXPECT_EQ(pool.page_cache().capacity(), 2560);
}

TEST(BufferPool, SetReservationTracksAbsolute) {
  BufferPool pool(1000);
  EXPECT_TRUE(pool.SetReservation(1, 300).ok());
  EXPECT_EQ(pool.reservation_of(1), 300);
  EXPECT_EQ(pool.reserved(), 300);
  EXPECT_TRUE(pool.SetReservation(1, 500).ok());  // absolute, not delta
  EXPECT_EQ(pool.reserved(), 500);
  EXPECT_TRUE(pool.SetReservation(1, 100).ok());
  EXPECT_EQ(pool.reserved(), 100);
}

TEST(BufferPool, RejectsOversubscription) {
  BufferPool pool(1000);
  EXPECT_TRUE(pool.SetReservation(1, 700).ok());
  Status s = pool.SetReservation(2, 400);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // The failed call must not corrupt state.
  EXPECT_EQ(pool.reserved(), 700);
  EXPECT_EQ(pool.reservation_of(2), 0);
  // Growing an existing reservation within the pool is fine.
  EXPECT_TRUE(pool.SetReservation(2, 300).ok());
}

TEST(BufferPool, RejectsNegative) {
  BufferPool pool(100);
  EXPECT_FALSE(pool.SetReservation(1, -5).ok());
}

TEST(BufferPool, ZeroReservationRemoves) {
  BufferPool pool(100);
  EXPECT_TRUE(pool.SetReservation(1, 40).ok());
  EXPECT_EQ(pool.reservation_count(), 1);
  EXPECT_TRUE(pool.SetReservation(1, 0).ok());
  EXPECT_EQ(pool.reservation_count(), 0);
  EXPECT_EQ(pool.reserved(), 0);
}

TEST(BufferPool, ReleaseAllDropsReservation) {
  BufferPool pool(100);
  EXPECT_TRUE(pool.SetReservation(1, 40).ok());
  EXPECT_TRUE(pool.SetReservation(2, 30).ok());
  pool.ReleaseAll(1);
  EXPECT_EQ(pool.reserved(), 30);
  pool.ReleaseAll(99);  // unknown query: no-op
  EXPECT_EQ(pool.reserved(), 30);
}

TEST(BufferPool, LruCapacityTracksUnreserved) {
  BufferPool pool(100);
  for (uint64_t k = 0; k < 100; ++k) pool.page_cache().Insert(k);
  EXPECT_EQ(pool.page_cache().size(), 100);
  EXPECT_TRUE(pool.SetReservation(1, 60).ok());
  // Reservation shrinks the cache area; LRU pages were evicted.
  EXPECT_EQ(pool.page_cache().capacity(), 40);
  EXPECT_EQ(pool.page_cache().size(), 40);
  pool.ReleaseAll(1);
  EXPECT_EQ(pool.page_cache().capacity(), 100);
}

TEST(BufferPool, PageKeyIsInjectiveAcrossDisks) {
  uint64_t a = BufferPool::PageKey(0, 12345);
  uint64_t b = BufferPool::PageKey(1, 12345);
  uint64_t c = BufferPool::PageKey(0, 12346);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(BufferPool, FullPoolReservation) {
  BufferPool pool(500);
  EXPECT_TRUE(pool.SetReservation(1, 500).ok());
  EXPECT_EQ(pool.unreserved(), 0);
  EXPECT_EQ(pool.page_cache().capacity(), 0);
  EXPECT_FALSE(pool.SetReservation(2, 1).ok());
}

}  // namespace
}  // namespace rtq::buffer
