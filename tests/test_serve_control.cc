// serve/control: the live command grammar, plus the engine-level
// guarantees behind it — malformed specs surface as Status errors and
// leave the running system untouched (never a CHECK crash), and a
// failed policy attach rolls back to a fresh incumbent.

#include "serve/control.h"

#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "gtest/gtest.h"
#include "harness/paper_experiments.h"
#include "serve/serve_session.h"

namespace rtq::serve {
namespace {

StatusOr<Command> Parse(const std::string& line) { return ParseCommand(line); }

TEST(Control, ParsesEveryCommand) {
  auto run = Parse("run 5000");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().kind, Command::Kind::kRun);
  EXPECT_EQ(run.value().count, 5000u);

  auto policy = Parse("policy select:candidates=pmm+pmm-predict");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().kind, Command::Kind::kPolicy);
  EXPECT_EQ(policy.value().arg, "select:candidates=pmm+pmm-predict");

  auto scenario = Parse("scenario flash:mult=6");
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario.value().kind, Command::Kind::kScenario);
  EXPECT_EQ(scenario.value().arg, "flash:mult=6");

  auto snapshot = Parse("snapshot out/run.rtqs");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().kind, Command::Kind::kSnapshot);
  EXPECT_EQ(snapshot.value().arg, "out/run.rtqs");

  auto restore = Parse("restore out/run.rtqs");
  ASSERT_TRUE(restore.ok());
  EXPECT_EQ(restore.value().kind, Command::Kind::kRestore);

  EXPECT_EQ(Parse("stats").value().kind, Command::Kind::kStats);
  EXPECT_EQ(Parse("metrics").value().kind, Command::Kind::kMetrics);
  EXPECT_EQ(Parse("quit").value().kind, Command::Kind::kQuit);
}

TEST(Control, BlankAndCommentLinesAreNops) {
  EXPECT_EQ(Parse("").value().kind, Command::Kind::kNop);
  EXPECT_EQ(Parse("   \t ").value().kind, Command::Kind::kNop);
  EXPECT_EQ(Parse("# a comment").value().kind, Command::Kind::kNop);
}

TEST(Control, MalformedLinesAreStatusErrorsNotCrashes) {
  const char* bad[] = {
      "run",            // missing count
      "run zero",       // non-numeric count
      "run 0",          // zero count
      "run -5",         // negative count
      "run 10 extra",   // trailing junk
      "policy",         // missing spec
      "scenario",       // missing spec
      "snapshot",       // missing path
      "restore",        // missing path
      "stats now",      // trailing junk on an argument-less command
      "quit 1",         // trailing junk
      "reboot",         // unknown keyword
  };
  for (const char* line : bad) {
    auto parsed = Parse(line);
    EXPECT_FALSE(parsed.ok()) << line;
    EXPECT_FALSE(parsed.status().message().empty()) << line;
  }
}

TEST(Control, SpecsKeepInternalSpacesVerbatim) {
  auto parsed = Parse("snapshot  /tmp/with spaces.rtqs ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().arg, "/tmp/with spaces.rtqs");
}

// --- live-input failure discipline (satellite: no CHECK reachable from
// serve-mode input) ------------------------------------------------------

TEST(ControlFailure, RejectedPolicySwapLeavesStateBitIdentical) {
  auto session = ServeSession::Create(SessionSpec{});
  ASSERT_TRUE(session.ok());
  ServeSession& s = *session.value();
  s.RunEvents(2000);

  std::vector<std::string> before;
  s.system().AppendStateDigest(&before);

  // Unknown policy name and malformed parameter: both must fail at the
  // registry Create stage without touching the engine.
  for (const char* spec : {"no-such-policy", "minmax:not-a-number"}) {
    engine::PolicySwapOutcome out = s.ApplyPolicy(spec);
    EXPECT_FALSE(out.status.ok()) << spec;
    EXPECT_FALSE(out.reattached) << spec;
    EXPECT_EQ(out.active_spec, "pmm") << spec;
  }
  EXPECT_TRUE(s.journal().empty());

  std::vector<std::string> after;
  s.system().AppendStateDigest(&after);
  EXPECT_EQ(before, after);
}

TEST(ControlFailure, RejectedScenarioSwapLeavesStateBitIdentical) {
  auto session = ServeSession::Create(SessionSpec{});
  ASSERT_TRUE(session.ok());
  ServeSession& s = *session.value();
  s.RunEvents(2000);

  std::vector<std::string> before;
  s.system().AppendStateDigest(&before);

  // Unknown scenario, and a well-formed one whose class count does not
  // match the baseline's single-class workload.
  for (const char* spec : {"no-such-scenario", "flash:mult=6"}) {
    auto swapped = s.ApplyScenario(spec);
    EXPECT_FALSE(swapped.ok()) << spec;
  }
  EXPECT_TRUE(s.journal().empty());

  std::vector<std::string> after;
  s.system().AppendStateDigest(&after);
  EXPECT_EQ(before, after);
}

TEST(ControlFailure, AttachFailureRollsBackToFreshIncumbent) {
  // A host that never ticks: pmm-tick's Attach fails, which exercises
  // the rollback path (rebuild the incumbent from its Describe() spec).
  engine::SystemConfig config = harness::BaselineConfig(0.06, {"pmm"});
  config.mpl_sample_interval = 0.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  engine::Rtdbs& s = *sys.value();
  s.Start();
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(s.StepEvent());

  engine::PolicySwapOutcome out = s.SwapPolicy("pmm-tick:ms=100");
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.active_spec, "pmm");  // incumbent is back in charge...
  EXPECT_TRUE(out.reattached);        // ...as a fresh instance
  EXPECT_EQ(s.policy().Describe(), "pmm");

  // The engine still runs: the rollback left a fully attached policy.
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(s.StepEvent());
}

TEST(ControlFailure, BadSessionSpecsFailCreateWithStatus) {
  const char* bad_workloads[] = {
      "baseline",            // missing rate
      "baseline:rate=0",     // non-positive rate
      "baseline:rate=fast",  // non-numeric rate
      "multiclass:r=0.1",    // wrong key
      "scenario:",           // empty scenario spec
      "scenario:nope",       // unknown scenario
      "steady:rate=0.1",     // unknown workload kind
  };
  for (const char* w : bad_workloads) {
    SessionSpec spec;
    spec.workload = w;
    auto session = ServeSession::Create(spec);
    EXPECT_FALSE(session.ok()) << w;
  }
  SessionSpec bad_policy;
  bad_policy.policy = "no-such-policy";
  EXPECT_FALSE(ServeSession::Create(bad_policy).ok());
}

}  // namespace
}  // namespace rtq::serve
