#include "model/disk_cache.h"

#include <gtest/gtest.h>

#include <deque>
#include <numeric>

#include "common/rng.h"

namespace rtq::model {
namespace {

TEST(DiskCache, EmptyContainsNothing) {
  DiskCache cache(32);
  EXPECT_FALSE(cache.Contains(0, 1));
  EXPECT_EQ(cache.cached_pages(), 0);
}

TEST(DiskCache, InsertedRangeIsHit) {
  DiskCache cache(32);
  cache.Insert(100, 6);
  EXPECT_TRUE(cache.Contains(100, 6));
  EXPECT_TRUE(cache.Contains(102, 3));
  EXPECT_TRUE(cache.Contains(105, 1));
  EXPECT_FALSE(cache.Contains(99, 2));
  EXPECT_FALSE(cache.Contains(104, 4));  // spills past the extent
}

TEST(DiskCache, ExtentsDoNotStitch) {
  DiskCache cache(32);
  cache.Insert(0, 6);
  cache.Insert(6, 6);
  // [4, 8) spans both extents: a real track buffer serves from one.
  EXPECT_FALSE(cache.Contains(4, 4));
  EXPECT_TRUE(cache.Contains(0, 6));
  EXPECT_TRUE(cache.Contains(6, 6));
}

TEST(DiskCache, LruEvictionByExtent) {
  DiskCache cache(12);
  cache.Insert(0, 6);
  cache.Insert(100, 6);
  EXPECT_TRUE(cache.Contains(0, 6));
  cache.Insert(200, 6);  // evicts the oldest extent (0)
  EXPECT_FALSE(cache.Contains(0, 6));
  EXPECT_TRUE(cache.Contains(100, 6));
  EXPECT_TRUE(cache.Contains(200, 6));
  EXPECT_LE(cache.cached_pages(), cache.capacity());
}

TEST(DiskCache, OversizedInsertKeepsTail) {
  DiskCache cache(8);
  cache.Insert(0, 20);
  // Only the last 8 pages remain buffered.
  EXPECT_TRUE(cache.Contains(12, 8));
  EXPECT_FALSE(cache.Contains(0, 8));
  EXPECT_EQ(cache.cached_pages(), 8);
}

TEST(DiskCache, InvalidateClears) {
  DiskCache cache(32);
  cache.Insert(5, 6);
  cache.Invalidate();
  EXPECT_FALSE(cache.Contains(5, 6));
  EXPECT_EQ(cache.cached_pages(), 0);
}

TEST(DiskCache, ZeroCapacityDisables) {
  DiskCache cache(0);
  cache.Insert(0, 6);
  EXPECT_FALSE(cache.Contains(0, 1));
}

TEST(DiskCache, EmptyRangeAlwaysContained) {
  DiskCache cache(32);
  EXPECT_TRUE(cache.Contains(12345, 0));
}

// Randomized Insert/Contains/Invalidate interleavings checked against a
// naive reference model written from the header contract alone (the
// same pattern as the EventQueue fuzz test): whole-extent LRU, oldest
// evicted first until the new range fits, oversized inserts keep only
// their tail, no stitching of adjacent extents. Fixed seeds so failures
// reproduce.
TEST(DiskCache, FuzzMatchesNaiveReferenceModel) {
  struct RefExtent {
    PageCount start;
    PageCount pages;
  };
  for (uint64_t seed : {1u, 7u, 99u, 1234u}) {
    Rng rng(seed);
    for (PageCount capacity : {PageCount{0}, PageCount{8}, PageCount{32}}) {
      DiskCache cache(capacity);
      std::deque<RefExtent> ref;  // front = oldest
      auto ref_pages = [&] {
        return std::accumulate(ref.begin(), ref.end(), PageCount{0},
                               [](PageCount sum, const RefExtent& e) {
                                 return sum + e.pages;
                               });
      };
      auto ref_contains = [&](PageCount start, PageCount pages) {
        if (pages <= 0) return true;
        for (const RefExtent& e : ref) {
          if (start >= e.start && start + pages <= e.start + e.pages) {
            return true;
          }
        }
        return false;
      };
      for (int step = 0; step < 2000; ++step) {
        int64_t op = rng.UniformInt(0, 9);
        if (op < 7) {
          // Small coordinate space forces overlaps, exact-fit evictions
          // and oversized inserts.
          PageCount start = rng.UniformInt(0, 49);
          PageCount pages = rng.UniformInt(0, capacity + 6);
          cache.Insert(start, pages);
          if (capacity > 0 && pages > 0) {
            if (pages > capacity) {
              start += pages - capacity;
              pages = capacity;
            }
            while (ref_pages() + pages > capacity && !ref.empty()) {
              ref.pop_front();
            }
            ref.push_back(RefExtent{start, pages});
          }
        } else if (op < 8) {
          cache.Invalidate();
          ref.clear();
        }
        // Probe: random ranges plus the exact live extents.
        for (int probe = 0; probe < 4; ++probe) {
          PageCount start = rng.UniformInt(0, 55);
          PageCount pages = rng.UniformInt(0, 12);
          ASSERT_EQ(cache.Contains(start, pages), ref_contains(start, pages))
              << "seed " << seed << " cap " << capacity << " step " << step
              << " range [" << start << ", " << start + pages << ")";
        }
        for (const RefExtent& e : ref) {
          ASSERT_TRUE(cache.Contains(e.start, e.pages));
        }
        ASSERT_EQ(cache.cached_pages(), ref_pages());
        ASSERT_LE(cache.cached_pages(), capacity);
      }
    }
  }
}

}  // namespace
}  // namespace rtq::model
