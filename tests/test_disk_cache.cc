#include "model/disk_cache.h"

#include <gtest/gtest.h>

namespace rtq::model {
namespace {

TEST(DiskCache, EmptyContainsNothing) {
  DiskCache cache(32);
  EXPECT_FALSE(cache.Contains(0, 1));
  EXPECT_EQ(cache.cached_pages(), 0);
}

TEST(DiskCache, InsertedRangeIsHit) {
  DiskCache cache(32);
  cache.Insert(100, 6);
  EXPECT_TRUE(cache.Contains(100, 6));
  EXPECT_TRUE(cache.Contains(102, 3));
  EXPECT_TRUE(cache.Contains(105, 1));
  EXPECT_FALSE(cache.Contains(99, 2));
  EXPECT_FALSE(cache.Contains(104, 4));  // spills past the extent
}

TEST(DiskCache, ExtentsDoNotStitch) {
  DiskCache cache(32);
  cache.Insert(0, 6);
  cache.Insert(6, 6);
  // [4, 8) spans both extents: a real track buffer serves from one.
  EXPECT_FALSE(cache.Contains(4, 4));
  EXPECT_TRUE(cache.Contains(0, 6));
  EXPECT_TRUE(cache.Contains(6, 6));
}

TEST(DiskCache, LruEvictionByExtent) {
  DiskCache cache(12);
  cache.Insert(0, 6);
  cache.Insert(100, 6);
  EXPECT_TRUE(cache.Contains(0, 6));
  cache.Insert(200, 6);  // evicts the oldest extent (0)
  EXPECT_FALSE(cache.Contains(0, 6));
  EXPECT_TRUE(cache.Contains(100, 6));
  EXPECT_TRUE(cache.Contains(200, 6));
  EXPECT_LE(cache.cached_pages(), cache.capacity());
}

TEST(DiskCache, OversizedInsertKeepsTail) {
  DiskCache cache(8);
  cache.Insert(0, 20);
  // Only the last 8 pages remain buffered.
  EXPECT_TRUE(cache.Contains(12, 8));
  EXPECT_FALSE(cache.Contains(0, 8));
  EXPECT_EQ(cache.cached_pages(), 8);
}

TEST(DiskCache, InvalidateClears) {
  DiskCache cache(32);
  cache.Insert(5, 6);
  cache.Invalidate();
  EXPECT_FALSE(cache.Contains(5, 6));
  EXPECT_EQ(cache.cached_pages(), 0);
}

TEST(DiskCache, ZeroCapacityDisables) {
  DiskCache cache(0);
  cache.Insert(0, 6);
  EXPECT_FALSE(cache.Contains(0, 1));
}

TEST(DiskCache, EmptyRangeAlwaysContained) {
  DiskCache cache(32);
  EXPECT_TRUE(cache.Contains(12345, 0));
}

}  // namespace
}  // namespace rtq::model
