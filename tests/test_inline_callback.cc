// Unit tests for the fixed-capacity callback holder
// (common/inline_callback.h): dispatch, move semantics, widening
// conversion, destruction of non-trivial captures, and the zero-tail
// invariant behind the fixed-size relocation fast path.

#include "common/inline_callback.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace rtq {
namespace {

TEST(InlineCallbackTest, DefaultIsEmptyAndFalsy) {
  InlineCallback<24> cb;
  EXPECT_FALSE(cb);
  InlineCallback<24> nil(nullptr);
  EXPECT_FALSE(nil);
}

TEST(InlineCallbackTest, InvokesCapturedLambda) {
  int hits = 0;
  InlineCallback<24> cb([&hits] { ++hits; });
  ASSERT_TRUE(cb);
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback<24> a([&hits] { ++hits; });
  InlineCallback<24> b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): emptiness is specified
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, MoveAssignReplacesExisting) {
  int first = 0, second = 0;
  InlineCallback<24> a([&first] { ++first; });
  InlineCallback<24> b([&second] { ++second; });
  a = std::move(b);
  a();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineCallbackTest, EmplaceAssignmentConstructsInPlace) {
  int hits = 0;
  InlineCallback<24> cb;
  cb = [&hits] { hits += 10; };
  cb();
  EXPECT_EQ(hits, 10);
  cb = nullptr;
  EXPECT_FALSE(cb);
}

TEST(InlineCallbackTest, WideningMovePreservesCallable) {
  int64_t acc = 0;
  int64_t* p = &acc;
  InlineCallback<24> narrow([p] { *p += 5; });
  InlineCallback<48> wide(std::move(narrow));
  ASSERT_TRUE(wide);
  wide();
  EXPECT_EQ(acc, 5);
  // The widened holder relocates again without corruption.
  InlineCallback<48> wider(std::move(wide));
  wider();
  EXPECT_EQ(acc, 10);
}

TEST(InlineCallbackTest, NonTrivialCaptureIsDestroyed) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback<24> cb([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // capture keeps it alive
  }
  EXPECT_TRUE(watch.expired());  // holder destruction ran the dtor
}

TEST(InlineCallbackTest, NonTrivialCaptureSurvivesRelocation) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  int got = 0;
  InlineCallback<24> a([token, &got] { got = *token; });
  token.reset();
  InlineCallback<48> b(std::move(a));
  EXPECT_FALSE(watch.expired());
  b();
  EXPECT_EQ(got, 7);
  b = nullptr;
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallbackTest, CaptureAtExactCapacityFits) {
  struct Fat {
    int64_t a, b, c;  // 24 bytes: exactly InlineCallback<24>'s capacity
  };
  Fat fat{1, 2, 3};
  int64_t sum = 0;
  static int64_t* sink;
  sink = &sum;
  InlineCallback<24> cb([fat]() { *sink = fat.a + fat.b + fat.c; });
  cb();
  EXPECT_EQ(sum, 6);
}

TEST(InlineCallbackTest, SizeIsCapacityPlusOnePointer) {
  static_assert(sizeof(InlineCallback<24>) == 24 + sizeof(void*));
  static_assert(sizeof(InlineCallback<48>) == 48 + sizeof(void*));
  static_assert(sizeof(InlineCallback<80>) == 80 + sizeof(void*));
}

TEST(InlineCallbackTest, RepeatedChurnIsStable) {
  // Mimics a slab slot: assign, relocate out, invoke, many times over.
  uint64_t acc = 0;
  uint64_t* p = &acc;
  InlineCallback<48> slot;
  for (uint64_t i = 0; i < 1000; ++i) {
    slot = [p, i] { *p += i; };
    InlineCallback<48> holder(std::move(slot));
    holder();
  }
  EXPECT_EQ(acc, 999u * 1000u / 2u);
}

}  // namespace
}  // namespace rtq
