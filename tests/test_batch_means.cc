#include "stats/batch_means.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rtq::stats {
namespace {

TEST(BatchMeans, NoBatchesNoInterval) {
  BatchMeans bm(10);
  ConfidenceInterval ci = bm.Interval(0.90);
  EXPECT_EQ(ci.num_batches, 0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(BatchMeans, PartialBatchDoesNotCount) {
  BatchMeans bm(10);
  for (int i = 0; i < 9; ++i) bm.Add(1.0);
  EXPECT_EQ(bm.completed_batches(), 0);
  bm.Add(1.0);
  EXPECT_EQ(bm.completed_batches(), 1);
}

TEST(BatchMeans, MeanOfConstantStream) {
  BatchMeans bm(5);
  for (int i = 0; i < 50; ++i) bm.Add(0.25);
  ConfidenceInterval ci = bm.Interval(0.90);
  EXPECT_EQ(ci.num_batches, 10);
  EXPECT_DOUBLE_EQ(ci.mean, 0.25);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
}

TEST(BatchMeans, IntervalCoversTrueMean) {
  Rng rng(8);
  BatchMeans bm(100);
  for (int i = 0; i < 5000; ++i) bm.Add(rng.NextDouble() < 0.3 ? 1.0 : 0.0);
  ConfidenceInterval ci = bm.Interval(0.90);
  EXPECT_GT(ci.num_batches, 10);
  EXPECT_LT(ci.lower(), 0.3);
  EXPECT_GT(ci.upper(), 0.3 - 0.05);
  EXPECT_NEAR(ci.mean, 0.3, 0.05);
}

TEST(BatchMeans, HalfWidthShrinksWithMoreData) {
  Rng rng(9);
  BatchMeans small(50), large(50);
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble();
    small.Add(x);
  }
  for (int i = 0; i < 10000; ++i) {
    large.Add(rng.NextDouble());
  }
  EXPECT_GT(small.Interval(0.90).half_width,
            large.Interval(0.90).half_width);
}

TEST(BatchMeans, ResetClears) {
  BatchMeans bm(2);
  bm.Add(1.0);
  bm.Add(1.0);
  bm.Reset();
  EXPECT_EQ(bm.completed_batches(), 0);
  EXPECT_EQ(bm.observations(), 0);
}

TEST(BatchMeans, ObservationCount) {
  BatchMeans bm(3);
  for (int i = 0; i < 7; ++i) bm.Add(0.0);
  EXPECT_EQ(bm.observations(), 7);
  EXPECT_EQ(bm.completed_batches(), 2);
}

}  // namespace
}  // namespace rtq::stats
