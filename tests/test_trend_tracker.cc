// stats::TrendTracker: windowed forecasting on synthetic signals. The
// confidence gate is the load-bearing part — pmm-predict only acts when
// a forecast is confident, so these pin exactly when that happens:
// clean ramps and flats are confident, white noise and fresh steps are
// not, and the window forgets history at the advertised rate.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/trend_tracker.h"

namespace rtq::stats {
namespace {

TEST(TrendTracker, TooFewSamplesIsInvalid) {
  TrendTracker t(8);
  EXPECT_FALSE(t.Predict(10.0).valid);
  t.Add(0.0, 1.0);
  t.Add(1.0, 2.0);
  EXPECT_FALSE(t.Predict(10.0).valid);
  t.Add(2.0, 3.0);
  EXPECT_TRUE(t.Predict(10.0).valid);
}

TEST(TrendTracker, CoincidentTimesAreInvalid) {
  TrendTracker t(8);
  t.Add(5.0, 1.0);
  t.Add(5.0, 2.0);
  t.Add(5.0, 3.0);
  EXPECT_FALSE(t.Predict(10.0).valid);
}

TEST(TrendTracker, CleanRampExtrapolatesExactlyWithFullConfidence) {
  TrendTracker t(16);
  for (int i = 0; i < 10; ++i) {
    t.Add(static_cast<double>(i), 3.0 + 2.0 * static_cast<double>(i));
  }
  Forecast f = t.Predict(20.0);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.value, 43.0, 1e-9);
  EXPECT_NEAR(f.current, 21.0, 1e-9);  // fitted level at the last sample
  EXPECT_NEAR(f.confidence, 1.0, 1e-9);
  // The quadratic refinement agrees on a straight line.
  ASSERT_TRUE(f.quad_valid);
  EXPECT_NEAR(f.quad_value, 43.0, 1e-6);
  EXPECT_NEAR(f.curvature, 0.0, 1e-9);
}

TEST(TrendTracker, FlatSeriesIsConfidentWithZeroSlope) {
  TrendTracker t(8);
  for (int i = 0; i < 8; ++i) t.Add(static_cast<double>(i), 4.5);
  Forecast f = t.Predict(100.0);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.value, 4.5, 1e-9);
  // Confident "no change": the gate may trust it, the band will not act.
  EXPECT_DOUBLE_EQ(f.confidence, 1.0);
}

TEST(TrendTracker, NoiseHasLowConfidence) {
  TrendTracker t(16);
  // Deterministic pseudo-noise: alternating around a level with varying
  // magnitude; no linear trend explains it.
  double values[] = {5.0, 1.0, 6.0, 0.5, 4.0, 2.0, 7.0, 0.0,
                     5.5, 1.5, 6.5, 0.2, 4.2, 2.2, 6.8, 0.4};
  for (int i = 0; i < 16; ++i) t.Add(static_cast<double>(i), values[i]);
  Forecast f = t.Predict(20.0);
  ASSERT_TRUE(f.valid);
  EXPECT_LT(f.confidence, 0.3);
}

TEST(TrendTracker, FreshStepHasLowConfidenceThenRampGains) {
  TrendTracker t(12);
  // A long flat stretch then a sudden step: right after the step the
  // line fits poorly (the window is bimodal), so a gate at 0.5 stays
  // closed instead of reacting to one outlier.
  for (int i = 0; i < 11; ++i) t.Add(static_cast<double>(i), 1.0);
  t.Add(11.0, 10.0);
  Forecast after_step = t.Predict(13.0);
  ASSERT_TRUE(after_step.valid);
  EXPECT_LT(after_step.confidence, 0.5);
  // As the new level keeps ramping, confidence recovers.
  for (int i = 12; i < 20; ++i) {
    t.Add(static_cast<double>(i), 10.0 + 2.0 * static_cast<double>(i - 11));
  }
  Forecast later = t.Predict(21.0);
  ASSERT_TRUE(later.valid);
  EXPECT_GT(later.confidence, 0.8);
  EXPECT_GT(later.slope, 0.0);
}

TEST(TrendTracker, SinusoidRisingEdgeForecastsUpward) {
  TrendTracker t(8);
  // Samples on the rising edge of a sinusoid (the diurnal shape): a
  // short window sees a confident local upward trend.
  for (int i = 0; i < 8; ++i) {
    double x = -1.0 + 0.25 * static_cast<double>(i);  // phase in [-1, 0.75]
    t.Add(static_cast<double>(i), 5.0 + 4.0 * std::sin(x));
  }
  Forecast f = t.Predict(10.0);
  ASSERT_TRUE(f.valid);
  EXPECT_GT(f.slope, 0.0);
  EXPECT_GT(f.confidence, 0.9);
  EXPECT_GT(f.value, f.current);
}

TEST(TrendTracker, WindowEvictsOldSamples) {
  TrendTracker t(4);
  // Old downward history must be forgotten once four upward samples
  // fill the window.
  for (int i = 0; i < 10; ++i) t.Add(static_cast<double>(i), 100.0 - i);
  EXPECT_EQ(t.count(), 4);
  for (int i = 10; i < 14; ++i) {
    t.Add(static_cast<double>(i), static_cast<double>(i));
  }
  Forecast f = t.Predict(20.0);
  ASSERT_TRUE(f.valid);
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
  EXPECT_NEAR(f.value, 20.0, 1e-9);
}

TEST(TrendTracker, QuadraticCapturesAcceleration) {
  TrendTracker t(12);
  for (int i = 0; i < 12; ++i) {
    double x = static_cast<double>(i);
    t.Add(x, 1.0 + 0.5 * x * x);
  }
  Forecast f = t.Predict(15.0);
  ASSERT_TRUE(f.valid);
  ASSERT_TRUE(f.quad_valid);
  EXPECT_NEAR(f.curvature, 0.5, 1e-6);
  EXPECT_NEAR(f.quad_value, 1.0 + 0.5 * 225.0, 1e-4);
  // The line undershoots an accelerating signal; the parabola does not.
  EXPECT_LT(f.value, f.quad_value);
}

TEST(TrendTracker, ResetClearsTheWindow) {
  TrendTracker t(8);
  for (int i = 0; i < 8; ++i) t.Add(static_cast<double>(i), 2.0 * i);
  t.Reset();
  EXPECT_EQ(t.count(), 0);
  EXPECT_FALSE(t.Predict(10.0).valid);
}

}  // namespace
}  // namespace rtq::stats
